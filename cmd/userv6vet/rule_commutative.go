package main

// commutative-contract: registering an analyzer with
// AddCommutativeAnalyzer authorizes the fused and unordered execution
// paths to split its stream arbitrarily and fold the replicas back —
// which is only sound if the type actually carries a fold. The rule
// checks both halves of that bargain module-wide:
//
//  1. every type passed to AddCommutativeAnalyzer (or its Filtered
//     variant) in non-test code must implement Merge with a matching
//     receiver — exactly one parameter of the registered type, so the
//     method expression fits the fold signature func(into, from T);
//  2. a type declaring Commutative() bool that is never registered
//     anywhere in the module is dead armor: the framework only honors
//     the registration-time declaration, so the method is a claim
//     nothing checks. (Types that also declare NonCommutative() are
//     exempt — that is the analyzer-set aggregator shape, reporting
//     on members rather than claiming to be one.)
//
// Test files may register throwaway doubles with inline folds (half
// the pipeline tests do), so only non-test registrations are held to
// the Merge requirement; registrations anywhere, tests included,
// count as "registered" for the dead-declaration half.

import (
	"go/ast"
	"go/types"
)

type commutativeRule struct {
	factsFor   *Module
	registered map[string]bool // "pkgpath.TypeName" -> registered commutatively
}

func (*commutativeRule) Name() string { return "commutative-contract" }

var commutativeAdders = map[string]bool{
	"AddCommutativeAnalyzer":         true,
	"AddCommutativeAnalyzerFiltered": true,
}

func (r *commutativeRule) Check(pass *Pass) []Diagnostic {
	r.ensureFacts(pass.Module)
	var diags []Diagnostic
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if pass.FileIsTest(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if t, ok := registeredArgType(info, n); ok {
					if msg := mergeContractError(t); msg != "" {
						diags = append(diags, pass.Diag(r.Name(), n.Pos(), "%s", msg))
					}
				}
			case *ast.FuncDecl:
				if named := commutativeDeclReceiver(info, n); named != nil {
					key := typeKey(named)
					if !r.registered[key] && !hasMethod(named, "NonCommutative") {
						diags = append(diags, pass.Diag(r.Name(), n.Pos(),
							"%s declares Commutative() but is never registered with AddCommutativeAnalyzer; the declaration is unchecked dead armor (register it, or drop the method)",
							named.Obj().Name()))
					}
				}
			}
			return true
		})
	}
	return diags
}

// ensureFacts scans every unit of the module — tests included — for
// commutative registrations, once per loaded module.
func (r *commutativeRule) ensureFacts(m *Module) {
	if r.factsFor == m {
		return
	}
	r.factsFor = m
	r.registered = map[string]bool{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if t, ok := registeredArgType(pkg.Info, call); ok {
					if named := namedOf(t); named != nil {
						r.registered[typeKey(named)] = true
					}
				}
				return true
			})
		}
	}
}

// registeredArgType returns the static type of the primary analyzer
// argument when call is an AddCommutativeAnalyzer{,Filtered}
// invocation (matched by name, so fixture frameworks qualify).
func registeredArgType(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	fn := calledFunc(info, call)
	if fn == nil || !commutativeAdders[fn.Name()] || len(call.Args) < 2 {
		return nil, false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Type == nil {
		return nil, false
	}
	return tv.Type, true
}

// mergeContractError checks the Merge half of the contract for a
// registered type and returns a diagnostic message, or "" when the
// contract holds.
func mergeContractError(t types.Type) string {
	named := namedOf(t)
	if named == nil {
		// Interface or anonymous type: nothing to pin a method on.
		return ""
	}
	name := named.Obj().Name()
	// The method set of the registered type must carry Merge: found on
	// *T only while T was registered means the receiver doesn't match
	// what the fold is handed.
	sel := types.NewMethodSet(t).Lookup(nil, "Merge")
	if sel == nil {
		if types.NewMethodSet(types.NewPointer(named)).Lookup(nil, "Merge") != nil {
			return name + " is registered with AddCommutativeAnalyzer by value but Merge has a pointer receiver; the fold would merge into a copy"
		}
		return name + " is registered with AddCommutativeAnalyzer but implements no Merge; the fused/unordered fold has nothing to call"
	}
	sig := sel.Obj().Type().(*types.Signature)
	if sig.Params().Len() != 1 || !types.Identical(sig.Params().At(0).Type(), t) {
		return name + " is registered with AddCommutativeAnalyzer but its Merge does not take exactly one " +
			types.TypeString(t, nil) + "; the method expression cannot serve as the fold"
	}
	return ""
}

// commutativeDeclReceiver returns the receiver's named type when decl
// is a Commutative() bool method declaration.
func commutativeDeclReceiver(info *types.Info, decl *ast.FuncDecl) *types.Named {
	if decl.Name.Name != "Commutative" || decl.Recv == nil || len(decl.Recv.List) != 1 {
		return nil
	}
	fn, ok := info.Defs[decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return nil
	}
	basic, ok := sig.Results().At(0).Type().(*types.Basic)
	if !ok || basic.Kind() != types.Bool {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// namedOf unwraps pointers down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeKey is the module-wide identity for a named type; string keys
// survive the same package being re-checked as a test unit.
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// hasMethod reports whether the named type (or its pointer) has a
// method with the given name.
func hasMethod(named *types.Named, name string) bool {
	return types.NewMethodSet(types.NewPointer(named)).Lookup(nil, name) != nil
}
