package main

// ctx-sleep: a bare time.Sleep inside a context-carrying function
// ignores cancellation — the caller's ctx fires and the goroutine
// keeps sleeping. internal/retry exists so every backoff in the tree
// waits with ctx-aware sleeps under the one capped-exponential
// policy; any other time.Sleep reachable from a ctx function is a
// cancellation hole. The rule flags time.Sleep calls whose enclosing
// function — or any enclosing function literal's parent — takes a
// context.Context parameter, everywhere except internal/retry.

import (
	"go/ast"
	"go/types"
)

type ctxSleepRule struct{}

func (ctxSleepRule) Name() string { return "ctx-sleep" }

func (r ctxSleepRule) Check(pass *Pass) []Diagnostic {
	if relPathMatches(pass.RelPath(), "internal/retry") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		if pass.FileIsTest(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				diags = append(diags, r.checkFunc(pass, fd.Type, fd.Body, hasCtxParam(pass, fd.Type))...)
			}
		}
	}
	return diags
}

// checkFunc walks one function body. inCtx is whether any function on
// the enclosing chain takes a context.Context; function literals
// nested inside a ctx function inherit it (a goroutine spawned there
// should still honor the ctx).
func (r ctxSleepRule) checkFunc(pass *Pass, ft *ast.FuncType, body ast.Node, inCtx bool) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			diags = append(diags, r.checkFunc(pass, n.Type, n.Body, inCtx || hasCtxParam(pass, n.Type))...)
			return false
		case *ast.CallExpr:
			if !inCtx {
				return true
			}
			fn := calledFunc(pass.Pkg.Info, n)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				diags = append(diags, pass.Diag(r.Name(), n.Pos(),
					"bare time.Sleep in a context-aware function ignores cancellation; use internal/retry's ctx-aware backoff"))
			}
		}
		return true
	})
	return diags
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
