package main

// faultio-seam: mutating file I/O in the dataset layer must flow
// through the internal/faultio FS seam. A direct os.Create (or
// OpenFile/Rename/Remove/MkdirAll) in internal/dataset,
// internal/telemetry, or cmd/userv6gen is invisible to the
// fault-injection harness: `gen -faults` and the crash-sweep tests
// would silently stop covering that write path, which is exactly the
// methodology drift PR 5 built the seam to prevent. The faultio
// package itself is the one place the os calls belong.

import "go/ast"

type faultioSeamRule struct{}

func (faultioSeamRule) Name() string { return "faultio-seam" }

// seamScopes are the module-relative package paths whose mutating
// I/O must use the seam.
var seamScopes = []string{"internal/dataset", "internal/telemetry", "cmd/userv6gen"}

// seamFuncs maps the os functions the rule intercepts to the FS
// method that replaces them.
var seamFuncs = map[string]string{
	"Create":   "Create",
	"OpenFile": "Create",
	"Rename":   "Rename",
	"Remove":   "Remove",
	"MkdirAll": "MkdirAll",
}

func (r faultioSeamRule) Check(pass *Pass) []Diagnostic {
	rel := pass.RelPath()
	inScope := false
	for _, s := range seamScopes {
		if relPathMatches(rel, s) {
			inScope = true
			break
		}
	}
	if !inScope || relPathMatches(rel, "internal/faultio") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		if pass.FileIsTest(f) {
			// Tests set up their own scratch files; only production
			// paths need the injectable seam.
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			if seam, ok := seamFuncs[fn.Name()]; ok {
				diags = append(diags, pass.Diag(r.Name(), call.Pos(),
					"direct os.%s bypasses the fault-injection seam; use faultio.FS.%s (docs/FAULT_INJECTION.md)",
					fn.Name(), seam))
			}
			return true
		})
	}
	return diags
}
