// Fixture for the errors-is rule: ==/!= against Err*-named
// package-level sentinels is flagged (module-local and imported,
// test files included); errors.Is, io.EOF, and non-sentinel names
// are not.
package store

import (
	"errors"
	"io"
)

var ErrClosed = errors.New("store: closed")

// ErrorKind is error-typed but the name is not sentinel-shaped.
var ErrorKind error = errors.New("store: kind")

func Check(err error) bool {
	if err == ErrClosed { // want `errors-is: ErrClosed compared with == breaks under error wrapping`
		return true
	}
	if err != io.ErrUnexpectedEOF { // want `errors-is: ErrUnexpectedEOF compared with != breaks under error wrapping`
		return false
	}
	return false
}

func CheckRight(err error) bool {
	if errors.Is(err, ErrClosed) {
		return true
	}
	if err == io.EOF { // io.EOF is handed back unwrapped by contract
		return true
	}
	return err == ErrorKind
}
