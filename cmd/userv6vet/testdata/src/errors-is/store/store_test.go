package store

// The rule covers test files: assertions that break under wrapping
// are refactor landmines.
func assertClosed(err error) bool {
	return err == ErrClosed // want `errors-is: ErrClosed compared with == breaks under error wrapping`
}
