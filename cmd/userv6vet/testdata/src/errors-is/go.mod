module example.com/errors-is

go 1.22
