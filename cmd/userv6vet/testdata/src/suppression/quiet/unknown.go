// Naming a rule that does not exist is a finding, not a silent no-op.
//
//userv6vet:ignore no-such-rule // want `suppression: ignore directive names unknown rule "no-such-rule"`
package quiet

func AlsoFine() int { return 2 }
