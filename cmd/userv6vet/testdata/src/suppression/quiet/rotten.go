// A suppression with nothing left to suppress is itself a finding —
// that is how stale directives rot loudly.
//
//userv6vet:ignore errors-is // want `suppression: unused suppression: rule "errors-is" reports nothing in this file`
package quiet

func Fine() int { return 1 }
