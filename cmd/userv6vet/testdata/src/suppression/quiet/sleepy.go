// A file-level ignore directive silences the named rule for this
// file only; the violation below must NOT be reported.
//
//userv6vet:ignore ctx-sleep
package quiet

import (
	"context"
	"time"
)

func Nap(ctx context.Context) {
	time.Sleep(time.Millisecond)
}
