module example.com/suppression

go 1.22
