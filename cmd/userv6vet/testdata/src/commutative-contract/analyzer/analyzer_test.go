package analyzer

// A test-only registration keeps Quiet's Commutative() live, and test
// doubles with inline folds are not held to the Merge requirement.
type testDouble struct{}

func wireForTest(s *Set) {
	AddCommutativeAnalyzer(s, &Quiet{}, func() *Quiet { return &Quiet{} }, (*Quiet).Merge)
	AddCommutativeAnalyzer(s, &testDouble{}, func() *testDouble { return &testDouble{} }, func(into, from *testDouble) {})
}
