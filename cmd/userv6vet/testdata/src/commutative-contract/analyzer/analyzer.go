// Fixture for the commutative-contract rule: a type registered with
// AddCommutativeAnalyzer must carry a Merge with a matching receiver,
// and a Commutative() declaration on a type that is never registered
// is dead armor. The framework stand-ins below are matched by name,
// exactly like the real internal/core API.
package analyzer

type Set struct{}

// NonCommutative marks Set as the aggregator shape: its Commutative()
// reports on members, so the dead-armor half exempts it.
func (s *Set) NonCommutative() []string { return nil }

func (s *Set) Commutative() bool { return true }

func AddCommutativeAnalyzer[T any](s *Set, primary T, mk func() T, fold func(into, from T)) {}

func AddCommutativeAnalyzerFiltered[T any](s *Set, primary T, mk func() T, fold func(into, from T), filter func(int) bool) {
}

// Good implements the full contract.
type Good struct{ n int }

func (g *Good) Merge(other *Good) { g.n += other.n }

// Bad is registered but has no Merge at all.
type Bad struct{}

// Mismatched has a Merge whose parameter is a different type, so the
// method expression cannot serve as the fold.
type Mismatched struct{}

func (m *Mismatched) Merge(other *Good) {}

// ValueReg is registered by value while Merge hangs off the pointer
// receiver: the fold would merge into a copy.
type ValueReg struct{ n int }

func (v *ValueReg) Merge(other ValueReg) { v.n += other.n }

// Orphan claims commutativity but nothing ever registers it, so the
// claim is never honored by any execution path.
type Orphan struct{}

func (o *Orphan) Commutative() bool { return true } // want `commutative-contract: Orphan declares Commutative\(\) but is never registered`

// Quiet is only registered from a test file; that still counts as
// registered, so its Commutative() is live.
type Quiet struct{}

func (q *Quiet) Merge(other *Quiet) {}

func (q *Quiet) Commutative() bool { return true }

func Wire(s *Set) {
	AddCommutativeAnalyzer(s, &Good{}, func() *Good { return &Good{} }, (*Good).Merge)
	AddCommutativeAnalyzer(s, &Bad{}, func() *Bad { return &Bad{} }, func(into, from *Bad) {})                                                   // want `commutative-contract: Bad is registered with AddCommutativeAnalyzer but implements no Merge`
	AddCommutativeAnalyzer(s, &Mismatched{}, func() *Mismatched { return &Mismatched{} }, func(a, b *Mismatched) {})                             // want `commutative-contract: Mismatched is registered with AddCommutativeAnalyzer but its Merge does not take exactly one \*example\.com/commutative-contract/analyzer\.Mismatched`
	AddCommutativeAnalyzerFiltered(s, ValueReg{}, func() ValueReg { return ValueReg{} }, func(a, b ValueReg) {}, func(int) bool { return true }) // want `commutative-contract: ValueReg is registered with AddCommutativeAnalyzer by value but Merge has a pointer receiver`
}
