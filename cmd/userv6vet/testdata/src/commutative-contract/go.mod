module example.com/commutative-contract

go 1.22
