// Fixture for the pool-discipline rule: a Get with no Put on any
// path leaks the pooled object; Puts anywhere in the function
// (including defers and nested literals) or returning the object to
// the caller transfer the responsibility.
package buf

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

func Leak() int {
	b := pool.Get().(*[]byte) // want `pool-discipline: sync\.Pool\.Get with no Put on any return path`
	return len(*b)
}

func BalancedDefer() int {
	b := pool.Get().(*[]byte)
	defer pool.Put(b)
	return len(*b)
}

func BalancedNested() {
	b := pool.Get().(*[]byte)
	func() { pool.Put(b) }()
}

// Accessor shape: the caller owns the object and its Put.
func Acquire() []byte {
	b := pool.Get().(*[]byte)
	return (*b)[:0]
}

func AcquireDirect() any {
	return pool.Get()
}

func Release(b []byte) {
	pool.Put(&b)
}
