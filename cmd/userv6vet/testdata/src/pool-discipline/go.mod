module example.com/pool-discipline

go 1.22
