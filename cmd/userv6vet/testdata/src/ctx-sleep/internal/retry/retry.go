// internal/retry is the one place a sleep primitive may live: the
// rule exempts the package that implements the ctx-aware backoff.
package retry

import (
	"context"
	"time"
)

func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	time.Sleep(d)
	return nil
}
