module example.com/ctx-sleep

go 1.22
