// Fixture for the ctx-sleep rule: bare time.Sleep in a
// context-carrying function (or a literal nested in one) is flagged;
// ctx-free functions and internal/retry are not.
package worker

import (
	"context"
	"time"
)

func Poll(ctx context.Context) {
	for ctx.Err() == nil {
		time.Sleep(time.Second) // want `ctx-sleep: bare time\.Sleep in a context-aware function`
	}
}

func PollNested(ctx context.Context) {
	go func() {
		time.Sleep(time.Second) // want `ctx-sleep: bare time\.Sleep in a context-aware function`
	}()
}

func LiteralTakesCtx() func(context.Context) {
	return func(ctx context.Context) {
		time.Sleep(time.Second) // want `ctx-sleep: bare time\.Sleep in a context-aware function`
	}
}

// No context anywhere on the chain: a plain helper may sleep.
func Backoff() {
	time.Sleep(time.Millisecond)
}

// Waiting on the ctx-aware clock is exactly what the rule wants.
func GoodWait(ctx context.Context) error {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
