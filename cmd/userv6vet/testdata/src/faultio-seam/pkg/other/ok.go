// Outside the scoped packages the rule stays silent: the seam only
// covers the dataset layer's I/O.
package other

import "os"

func Touch(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
