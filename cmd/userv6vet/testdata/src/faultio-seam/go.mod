module example.com/faultio-seam

go 1.22
