package telemetry

import "os"

func Spill(path string) error {
	f, err := os.Create(path) // want `faultio-seam: direct os\.Create bypasses`
	if err != nil {
		return err
	}
	return f.Close()
}
