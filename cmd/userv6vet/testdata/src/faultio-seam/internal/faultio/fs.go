// The faultio package is where the os calls belong: it implements the
// seam.
package faultio

import "os"

func Create(name string) (*os.File, error) { return os.Create(name) }

func Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
