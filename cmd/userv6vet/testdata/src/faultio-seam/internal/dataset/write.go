// Fixture for the faultio-seam rule: mutating os calls inside the
// scoped packages must be flagged; reads and out-of-scope packages
// must not.
package dataset

import "os"

func Export(path string) error {
	f, err := os.Create(path) // want `faultio-seam: direct os\.Create bypasses the fault-injection seam`
	if err != nil {
		return err
	}
	defer f.Close()
	if err := os.MkdirAll("shards", 0o755); err != nil { // want `faultio-seam: direct os\.MkdirAll bypasses`
		return err
	}
	if err := os.Rename(path, path+".final"); err != nil { // want `faultio-seam: direct os\.Rename bypasses`
		return err
	}
	return os.Remove(path + ".tmp") // want `faultio-seam: direct os\.Remove bypasses`
}

func Append(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644) // want `faultio-seam: direct os\.OpenFile bypasses`
	if err != nil {
		return err
	}
	return f.Close()
}

// Reads never mutate; the seam does not gate them.
func Probe(path string) ([]byte, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	f.Close()
	return os.ReadFile(path)
}
