package dataset

import "os"

// Test files set up scratch state directly; the seam rule leaves them
// alone.
func scratch(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}
