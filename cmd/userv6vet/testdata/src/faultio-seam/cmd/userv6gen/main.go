package main

import "os"

func main() {
	os.MkdirAll("out", 0o755) // want `faultio-seam: direct os\.MkdirAll bypasses`
}
