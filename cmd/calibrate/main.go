// Command calibrate prints the key calibration statistics of the
// synthetic world against the paper's published anchors. It is a
// development tool: run it after changing model parameters to see which
// targets drift.
package main

import (
	"flag"
	"fmt"

	"userv6/internal/abuse"
	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/netmodel"
	"userv6/internal/population"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

func main() {
	users := flag.Int("users", 40000, "population size")
	flag.Parse()

	scale := float64(*users) / 200000.0
	world := netmodel.BuildWorld(netmodel.WorldConfig{Seed: 1, Scale: scale})
	pcfg := population.DefaultConfig()
	pcfg.Users = *users
	pop := population.Synthesize(world, pcfg)
	gen := telemetry.NewGenerator(pop, 1)

	acfg := abuse.DefaultConfig()
	acfg.AccountsPerDay = int(float64(acfg.AccountsPerDay) * scale)
	ab := abuse.NewGenerator(world, acfg)

	// ---- Fig 1: daily prevalence on a pre-pandemic weekday, weekend,
	// and lockdown day.
	for _, d := range []simtime.Day{5, 9, 80} {
		prev := core.NewPrevalence()
		gen.GenerateDay(d, prev.Observe)
		ds := prev.Daily()[0]
		fmt.Printf("fig1 day=%-3d (%-9s wknd=%-5v lock=%.2f) userV6=%.3f reqV6=%.3f\n",
			int(d), d.Weekday(), d.IsWeekend(), simtime.LockdownIntensity(d), ds.UserShare, ds.ReqShare)
	}

	// ---- Week analyses (Apr 13-19).
	const from, to = simtime.AnalysisWeekStart, simtime.AnalysisWeekEnd
	ucWeek := core.NewUserCentric()
	ucDay := core.NewUserCentric()
	prevWeek := core.NewPrevalence()
	gen.Generate(from, to, func(o telemetry.Observation) {
		ucWeek.Observe(o)
		prevWeek.Observe(o)
		if o.Day == to {
			ucDay.Observe(o)
		}
	})

	// Fig 2: addresses per user.
	for _, c := range []struct {
		name string
		uc   *core.UserCentric
	}{{"1day", ucDay}, {"7day", ucWeek}} {
		h4 := c.uc.AddrsPerUser(netaddr.IPv4)
		h6 := c.uc.AddrsPerUser(netaddr.IPv6)
		fmt.Printf("fig2 %s v4: single=%.2f >5=%.2f med=%d | v6: single=%.2f >5=%.2f med=%d\n",
			c.name, h4.CDFAt(1), h4.FracAbove(5), h4.Median(),
			h6.CDFAt(1), h6.FracAbove(5), h6.Median())
	}
	// Paper: day single 37% v4 / 32% v6, >5: 19% v4 / 20% v6.
	// Week medians: 6 v4, 9 v6.

	// Fig 4: prefix spans.
	spans := ucWeek.PrefixSpans([]int{32, 40, 44, 48, 56, 64, 72, 96, 128})
	for _, s := range spans {
		fmt.Printf("fig4 /%d one=%.2f <=2=%.2f <=3=%.2f\n", s.Length, s.One, s.AtMost2, s.AtMost3)
	}

	// §4.4 patterns.
	pat := ucWeek.AddrPatterns()
	fmt.Printf("s44 teredo=%.5f 6to4=%.5f eui64=%.4f euiReuse=%.2f structured=%.4f\n",
		pat.TeredoShare, pat.SixToFourShare, pat.EUI64Share, pat.EUI64IIDReuse, pat.StructuredShare)

	// Table 1: top ASNs.
	rows := prevWeek.TopASNs(max(50, *users/150), 10, world.ASNName)
	for i, r := range rows {
		fmt.Printf("tab1 #%-2d AS%-6d %-24s ratio=%.2f users=%d\n", i+1, r.ASN, r.Name, r.Ratio, r.Users)
	}
	zero, under, total := prevWeek.ASNShareBands(max(50, *users/150))
	fmt.Printf("tab1 bands zero=%.3f under10=%.3f totalASNs=%d\n", zero, under, total)

	// Table 2: top countries + Germany shift.
	fmt.Println("tab2 top countries (apr):")
	for i, r := range prevWeek.TopCountries(max(50, *users/1000), 10) {
		fmt.Printf("tab2 #%-2d %s ratio=%.3f users=%d\n", i+1, r.Country, r.Ratio, r.Users)
	}
	prevJan := core.NewPrevalence()
	gen.Generate(simtime.JanWeekStart, simtime.JanWeekEnd, prevJan.Observe)
	for _, cc := range []string{"DE", "GR", "IN", "US"} {
		ja, _ := prevJan.CountryRatio(cc)
		ap, _ := prevWeek.CountryRatio(cc)
		fmt.Printf("tab2 %s jan=%.3f apr=%.3f\n", cc, ja, ap)
	}

	// ---- Fig 5/6: lifespans over a 28-day lookback ending Apr 19.
	ls := core.NewLifespans(to, 32, 48, 64, 128)
	gen.Generate(to-27, to, ls.Observe)
	for _, c := range []struct {
		name string
		fam  netaddr.Family
		len  int
	}{{"v4", netaddr.IPv4, 32}, {"v6", netaddr.IPv6, 128}} {
		h := ls.AgeHist(c.fam, c.len)
		fmt.Printf("fig5 %s: fresh=%.3f >7d=%.3f >27d=%.4f pairs=%d\n",
			c.name, h.CDFAt(0), h.FracAbove(7), h.FracAbove(26), int(h.N()))
	}
	for _, fam := range []netaddr.Family{netaddr.IPv4, netaddr.IPv6} {
		for _, fs := range ls.FreshShares(fam) {
			fmt.Printf("fig6 %s /%d within1=%.2f within3=%.2f pairs=%d\n", fam, fs.Length, fs.Within1, fs.Within3, fs.Pairs)
		}
	}

	// ---- Fig 7/8/9/10: IP-centric, Apr 13-19 week, full platform view
	// (benign + abusive).
	ics := map[string]*core.IPCentric{
		"v4/32":  core.NewIPCentric(netaddr.IPv4, 32),
		"v6/128": core.NewIPCentric(netaddr.IPv6, 128),
		"v6/72":  core.NewIPCentric(netaddr.IPv6, 72),
		"v6/68":  core.NewIPCentric(netaddr.IPv6, 68),
		"v6/64":  core.NewIPCentric(netaddr.IPv6, 64),
		"v6/56":  core.NewIPCentric(netaddr.IPv6, 56),
		"v6/48":  core.NewIPCentric(netaddr.IPv6, 48),
		"v6/44":  core.NewIPCentric(netaddr.IPv6, 44),
	}
	icDay4 := core.NewIPCentric(netaddr.IPv4, 32)
	icDay6 := core.NewIPCentric(netaddr.IPv6, 128)
	feed := func(o telemetry.Observation) {
		for _, ic := range ics {
			ic.Observe(o)
		}
		if o.Day == from {
			icDay4.Observe(o)
			icDay6.Observe(o)
		}
	}
	gen.Generate(from, to, feed)
	ab.Generate(from, to, feed)

	fmt.Printf("fig7 day  v4 single=%.3f | v6 single=%.3f\n",
		icDay4.UsersPerPrefix().CDFAt(1), icDay6.UsersPerPrefix().CDFAt(1))
	fmt.Printf("fig7 week v4 single=%.3f | v6 single=%.3f v6<=2=%.4f\n",
		ics["v4/32"].UsersPerPrefix().CDFAt(1), ics["v6/128"].UsersPerPrefix().CDFAt(1),
		ics["v6/128"].UsersPerPrefix().CDFAt(2))
	fmt.Printf("fig8 AAs/addr single: v4=%.3f v6=%.3f | benign on AA-addrs: v4 zero=%.3f v4>10=%.3f v6 zero=%.3f v6>1=%.3f\n",
		ics["v4/32"].AbusivePerAbusivePrefix().CDFAt(1),
		ics["v6/128"].AbusivePerAbusivePrefix().CDFAt(1),
		ics["v4/32"].BenignPerAbusivePrefix().CDFAt(0),
		ics["v4/32"].BenignPerAbusivePrefix().FracAbove(10),
		ics["v6/128"].BenignPerAbusivePrefix().CDFAt(0),
		ics["v6/128"].BenignPerAbusivePrefix().FracAbove(1))
	for _, k := range []string{"v6/128", "v6/72", "v6/68", "v6/64", "v6/56", "v6/48", "v6/44", "v4/32"} {
		fmt.Printf("fig9 %s single=%.3f prefixes=%d\n", k, ics[k].UsersPerPrefix().CDFAt(1), ics[k].Prefixes())
	}
	for _, k := range []string{"v6/128", "v6/64", "v6/56", "v4/32"} {
		fmt.Printf("fig10 %s AA single=%.3f benign<=1=%.3f\n",
			k, ics[k].AbusivePerAbusivePrefix().CDFAt(1), ics[k].BenignPerAbusivePrefix().CDFAt(1))
	}

	// Outliers (§6.1.3).
	hc := ics["v6/128"].ConcentrationAbove(max(20, *users/1500), world.ASNOf)
	fmt.Printf("outlier v6 heavy(>%d)=%d topASN=%d share=%.2f structured=%.2f | v4 heavy=%d\n",
		max(20, *users/1500), hc.Heavy, hc.TopASN, hc.TopASNShare, hc.StructuredShare,
		ics["v4/32"].PrefixesWithMoreThan(max(20, *users/1500)))
	fmt.Printf("outlier top v4 addr=%d users; top v6 addr=%d users; top v6 /64=%d users\n",
		top1(ics["v4/32"]), top1(ics["v6/128"]), top1(ics["v6/64"]))

	// ---- Fig 11: ROC day n -> n+1 (Apr 18 -> 19).
	for _, spec := range []struct {
		name string
		fam  netaddr.Family
		len  int
	}{{"/128", netaddr.IPv6, 128}, {"/64", netaddr.IPv6, 64}, {"/56", netaddr.IPv6, 56}, {"v4", netaddr.IPv4, 32}} {
		act := core.NewActioning(spec.fam, spec.len)
		gen.GenerateDay(to-1, act.ObserveDayN)
		ab.GenerateDay(to-1, act.ObserveDayN)
		gen.GenerateDay(to, act.ObserveDayN1)
		ab.GenerateDay(to, act.ObserveDayN1)
		for _, t := range []float64{0, 0.1, 1.0} {
			c := act.Counts(t)
			fmt.Printf("fig11 %s t=%.1f TPR=%.3f FPR=%.5f\n", spec.name, t, c.TPR(), c.FPR())
		}
	}

	// Fig 3: abusive addresses per account, one day.
	aaDay := core.NewUserCentricFor(true)
	ab.GenerateDay(to, aaDay.Observe)
	h4 := aaDay.AddrsPerUser(netaddr.IPv4)
	h6 := aaDay.AddrsPerUser(netaddr.IPv6)
	fmt.Printf("fig3 AA 1day v4: single=%.2f med=%d | v6: single=%.2f med=%d (accounts=%d)\n",
		h4.CDFAt(1), h4.Median(), h6.CDFAt(1), h6.Median(), aaDay.Users())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func top1(ic *core.IPCentric) int {
	tops := ic.TopPrefixes(1)
	if len(tops) == 0 {
		return 0
	}
	return tops[0].Users
}
