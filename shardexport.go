package userv6

// Sharded dataset export: the scale-out path for dataset generation.
// Instead of funneling every shard's observations through one writer,
// each generation shard streams directly into its own part-NNNN.uv6
// dataset file, and a manifest.uv6m binds the parts together (seed,
// config hash, per-part user ranges, block counts, checksums). Merging
// the parts with dataset.Merge reproduces, byte for byte, the file a
// single-writer run would have written — so export throughput scales
// with cores (and, by splitting user ranges, with machines) without
// giving up the canonical artifact.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"userv6/internal/dataset"
	"userv6/internal/telemetry"
)

// PartName returns the canonical filename of part i of a sharded
// export.
func PartName(i int) string { return fmt.Sprintf("part-%04d.uv6", i) }

// ExportShardedCtx generates the telemetry described by meta (window,
// benign-only flag) into dir as per-shard dataset part files plus a
// manifest, using shards concurrent generators (0 means GOMAXPROCS).
// Benign shards cover contiguous ascending user ranges; unless
// meta.BenignOnly is set, the abusive stream is generated serially
// into one trailing part, preserving the single-writer order (benign
// users ascending, then abusive). wrap, when non-nil, decorates each
// part's emit func — the hook where deterministic samplers attach.
//
// On any failure every temp file is aborted and already-finalized
// parts are removed, so dir never holds a half-written export with a
// manifest. Cancellation stops generation within one (user, day)
// batch.
func (s *Sim) ExportShardedCtx(ctx context.Context, dir string, shards int, meta dataset.Meta, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) (*dataset.Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("userv6: export dir: %w", err)
	}
	from, to := meta.Window()
	ranges := s.ShardRanges(shards)
	if len(ranges) == 0 {
		return nil, fmt.Errorf("userv6: empty population, nothing to export")
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type part struct {
		w    *dataset.Writer
		info dataset.PartInfo
		err  error
	}
	parts := make([]*part, 0, len(ranges)+1)

	// openPart creates one part sink; write errors cancel the run but
	// are remembered per part so the first real error surfaces.
	openPart := func(i int, info dataset.PartInfo) (*part, telemetry.EmitFunc) {
		info.Codec = meta.Codec
		p := &part{info: info}
		w, err := dataset.Create(filepath.Join(dir, info.Name), meta)
		if err != nil {
			p.err = err
			cancel()
			parts = append(parts, p)
			return p, func(telemetry.Observation) {}
		}
		p.w = w
		parts = append(parts, p)
		emit := func(o telemetry.Observation) {
			if p.err == nil {
				if werr := w.Write(o); werr != nil {
					p.err = werr
					cancel()
				}
			}
		}
		if wrap != nil {
			return p, wrap(emit)
		}
		return p, emit
	}

	abortAll := func() {
		for _, p := range parts {
			if p.w != nil {
				p.w.Abort()
			}
			os.Remove(filepath.Join(dir, p.info.Name))
		}
	}

	genErr := s.GenerateParallelRangesCtx(ctx, from, to, shards, func(sh, lo, hi int) telemetry.EmitFunc {
		_, emit := openPart(sh, dataset.PartInfo{
			Name: PartName(sh), Kind: dataset.PartKindBenign, UserLo: lo, UserHi: hi,
		})
		return emit
	})
	for _, p := range parts {
		if p.err != nil {
			genErr = p.err
			break
		}
	}
	if genErr == nil && !meta.BenignOnly {
		p, emit := openPart(len(parts), dataset.PartInfo{
			Name: PartName(len(parts)), Kind: dataset.PartKindAbusive,
		})
		if p.err == nil {
			s.Abusive.Generate(from, to, emit)
		}
		genErr = p.err
	}
	if genErr != nil {
		abortAll()
		return nil, genErr
	}

	man := &dataset.Manifest{
		Version:    dataset.ManifestVersion,
		Seed:       meta.Seed,
		ConfigHash: dataset.ConfigHash(meta),
		Shards:     len(ranges),
		Meta:       meta,
	}
	for _, p := range parts {
		if err := p.w.Close(); err != nil {
			abortAll()
			return nil, err
		}
		p.info.Records = p.w.Records()
		p.info.Blocks = p.w.Blocks()
		crc, err := dataset.FileCRC32C(filepath.Join(dir, p.info.Name))
		if err != nil {
			abortAll()
			return nil, err
		}
		p.info.CRC32C = crc
		man.Parts = append(man.Parts, p.info)
	}
	if err := dataset.WriteManifest(filepath.Join(dir, dataset.ManifestName), man); err != nil {
		abortAll()
		return nil, err
	}
	return man, nil
}
