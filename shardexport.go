package userv6

// Sharded dataset export: the scale-out path for dataset generation.
// Instead of funneling every shard's observations through one writer,
// each generation shard streams directly into its own part-NNNN.uv6
// dataset file, and a manifest.uv6m binds the parts together (seed,
// config hash, per-part user ranges, block counts, checksums). Merging
// the parts with dataset.Merge reproduces, byte for byte, the file a
// single-writer run would have written — so export throughput scales
// with cores (and, by splitting user ranges, with machines) without
// giving up the canonical artifact.
//
// The export is crash-survivable end to end. A provisional manifest —
// every expected part with its user range, zero counts, no checksums,
// Complete false — is written before generation starts; each part is
// finalized the moment its shard finishes and its manifest entry
// (records, blocks, whole-file CRC) is rewritten atomically. An
// interrupted or faulted run therefore always leaves dir in a state
// ResumeShardedCtx can finish from: finalized parts are recognized by
// their recorded checksum, everything else (torn temp files, partial
// parts, missing parts) is salvaged to its last intact frame and only
// the missing suffix is regenerated. The resumed output — parts and
// manifest both — is byte-identical to an uninterrupted run.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"userv6/internal/dataset"
	"userv6/internal/faultio"
	"userv6/internal/simtime"
	"userv6/internal/telemetry"
)

// PartName returns the canonical filename of part i of a sharded
// export.
func PartName(i int) string { return fmt.Sprintf("part-%04d.uv6", i) }

// shardedRun is the shared bookkeeping of an export or resume pass:
// the manifest under construction and the lock serializing its
// incremental rewrites (part finalizations race on shard goroutines).
type shardedRun struct {
	fsys faultio.FS
	dir  string
	mu   sync.Mutex
	man  *dataset.Manifest
}

func (r *shardedRun) manifestPath() string {
	return filepath.Join(r.dir, dataset.ManifestName)
}

// writeManifest rewrites the manifest atomically under the lock.
func (r *shardedRun) writeManifest() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return dataset.WriteManifestFS(r.fsys, r.manifestPath(), r.man)
}

// finalizePart closes the part's writer, records its counts and
// whole-file checksum in manifest entry i, and rewrites the manifest —
// so a crash at any later moment finds this part marked done.
func (r *shardedRun) finalizePart(i int, w *dataset.Writer) error {
	if err := w.Close(); err != nil {
		return err
	}
	crc, err := dataset.FileCRC32CFS(r.fsys, w.Path())
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.man.Parts[i].Records = w.Records()
	r.man.Parts[i].Blocks = w.Blocks()
	r.man.Parts[i].CRC32C = crc
	return dataset.WriteManifestFS(r.fsys, r.manifestPath(), r.man)
}

// provisionalManifest lays out the full expected part list for a run:
// benign shards over the given user ranges, plus one trailing abusive
// part unless the run is benign-only. Counts and checksums are zero —
// they are filled in as parts finalize.
func provisionalManifest(meta dataset.Meta, ranges [][2]int) *dataset.Manifest {
	man := &dataset.Manifest{
		Version:    dataset.ManifestVersion,
		Seed:       meta.Seed,
		ConfigHash: dataset.ConfigHash(meta),
		Shards:     len(ranges),
		Meta:       meta,
	}
	for i, r := range ranges {
		man.Parts = append(man.Parts, dataset.PartInfo{
			Name: PartName(i), Kind: dataset.PartKindBenign,
			UserLo: r[0], UserHi: r[1], Codec: meta.Codec,
		})
	}
	if !meta.BenignOnly {
		man.Parts = append(man.Parts, dataset.PartInfo{
			Name: PartName(len(ranges)), Kind: dataset.PartKindAbusive, Codec: meta.Codec,
		})
	}
	return man
}

// ExportShardedCtx generates the telemetry described by meta (window,
// benign-only flag) into dir as per-shard dataset part files plus a
// manifest, using shards concurrent generators (0 means GOMAXPROCS).
// Benign shards cover contiguous ascending user ranges; unless
// meta.BenignOnly is set, the abusive stream is generated serially
// into one trailing part, preserving the single-writer order (benign
// users ascending, then abusive). wrap, when non-nil, decorates each
// part's emit func — the hook where deterministic samplers attach.
//
// On failure or cancellation nothing is deleted: finalized parts, the
// partial part each interrupted shard flushed, and the incrementally
// updated manifest all stay in dir, which is exactly the state
// ResumeShardedCtx finishes from. Cancellation stops generation within
// one (user, day) batch.
func (s *Sim) ExportShardedCtx(ctx context.Context, dir string, shards int, meta dataset.Meta, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) (*dataset.Manifest, error) {
	return s.ExportShardedFS(ctx, faultio.OS, dir, shards, meta, wrap)
}

// ExportShardedFS is ExportShardedCtx over an explicit filesystem —
// the seam the fault-injection harness (and `userv6gen gen -faults`)
// wraps to rehearse crashes at exact byte offsets.
func (s *Sim) ExportShardedFS(ctx context.Context, fsys faultio.FS, dir string, shards int, meta dataset.Meta, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) (*dataset.Manifest, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("userv6: export dir: %w", err)
	}
	from, to := meta.Window()
	ranges := s.ShardRanges(shards)
	if len(ranges) == 0 {
		return nil, fmt.Errorf("userv6: empty population, nothing to export")
	}

	run := &shardedRun{fsys: fsys, dir: dir, man: provisionalManifest(meta, ranges)}
	// The provisional manifest goes down before any record: from here on
	// the directory always describes what the run was supposed to
	// produce, so an interruption at any point is resumable.
	if err := run.writeManifest(); err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// makePartSink opens part i's writer and returns the emit func plus
	// the completion hook generation calls when the part's range is
	// done. Writer-side errors cancel the run but are remembered so the
	// first real fault surfaces over cancellation noise.
	makePartSink := func(i int) (telemetry.EmitFunc, func(error) error) {
		var werr error
		w, err := dataset.CreateFS(fsys, filepath.Join(dir, run.man.Parts[i].Name), meta)
		if err != nil {
			cancel()
			return func(telemetry.Observation) {}, func(genErr error) error { return err }
		}
		emit := func(o telemetry.Observation) {
			if werr == nil {
				if e := w.Write(o); e != nil {
					werr = e
					cancel()
				}
			}
		}
		done := func(genErr error) error {
			if werr != nil {
				w.Close() // best effort: keep whatever reached disk
				return werr
			}
			if genErr != nil {
				// Interrupted mid-range: finalize the partial part like a
				// single-file interrupted gen, but leave its manifest entry
				// provisional — an empty checksum is what tells a resume
				// this part is unfinished.
				w.Close()
				return genErr
			}
			return run.finalizePart(i, w)
		}
		if wrap != nil {
			return wrap(emit), done
		}
		return emit, done
	}

	genErr := s.GenerateParallelSinksCtx(ctx, from, to, shards, func(sh, _, _ int) (telemetry.EmitFunc, func(error) error) {
		return makePartSink(sh)
	})
	if genErr == nil && !meta.BenignOnly {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		emit, done := makePartSink(len(ranges))
		s.Abusive.Generate(from, to, emit)
		genErr = done(nil)
	}
	if genErr != nil {
		return nil, genErr
	}

	run.man.Complete = true
	if err := run.writeManifest(); err != nil {
		return nil, err
	}
	return run.man, nil
}

// ResumeShardedCtx finishes an interrupted sharded export in dir: it
// reads the (provisional or final) manifest, keeps every part whose
// recorded whole-file checksum still matches, and rebuilds the rest —
// salvaging each damaged or unfinished part's intact record prefix
// (from the part file or its crash-safe .tmp sibling), deriving the
// (user, day) frontier, and regenerating only the missing suffix of
// that part's user range. Finished parts update the manifest
// incrementally, so an interrupted resume is itself resumable. The
// final directory — every part and the manifest — is byte-identical to
// an uninterrupted ExportShardedCtx run.
//
// wrap must be the same emit decorator the original run used (the
// deterministic sampler), or the regenerated suffixes will diverge.
func (s *Sim) ResumeShardedCtx(ctx context.Context, dir string, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) (*dataset.Manifest, error) {
	return s.ResumeShardedFS(ctx, faultio.OS, dir, wrap)
}

// ResumeShardedFS is ResumeShardedCtx over an explicit filesystem for
// writes and checksums (prefix salvage always reads the real files on
// disk).
func (s *Sim) ResumeShardedFS(ctx context.Context, fsys faultio.FS, dir string, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) (*dataset.Manifest, error) {
	run := &shardedRun{fsys: fsys, dir: dir}
	man, err := dataset.ReadManifestFS(fsys, run.manifestPath())
	if err != nil {
		return nil, fmt.Errorf("userv6: sharded resume: %w", err)
	}
	run.man = man
	meta := man.Meta
	if got := dataset.ConfigHash(meta); got != man.ConfigHash {
		return nil, fmt.Errorf("userv6: sharded resume: manifest config hash %s does not match its own metadata (%s)", man.ConfigHash, got)
	}
	if meta.Users != len(s.Pop.Users) || meta.Seed != s.Scenario.Seed {
		return nil, fmt.Errorf("userv6: sharded resume: manifest is for seed %d / %d users, sim has seed %d / %d users",
			meta.Seed, meta.Users, s.Scenario.Seed, len(s.Pop.Users))
	}
	from, to := meta.Window()

	for i := range man.Parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := man.Parts[i]
		path := filepath.Join(dir, p.Name)
		if p.CRC32C != "" {
			if crc, err := dataset.FileCRC32CFS(fsys, path); err == nil && crc == p.CRC32C {
				continue // part finalized and intact
			}
		}
		if err := s.resumePart(ctx, run, i, path, from, to, wrap); err != nil {
			return nil, fmt.Errorf("userv6: sharded resume %s: %w", p.Name, err)
		}
	}

	run.man.Complete = true
	if err := run.writeManifest(); err != nil {
		return nil, err
	}
	return run.man, nil
}

// resumePart rebuilds one part: salvage the verified record prefix of
// whatever survives on disk, re-emit it into a fresh writer, and
// regenerate the remainder of the part's range from the derived
// frontier. Deterministic generation makes the rebuilt part
// byte-identical to an uninterrupted one.
func (s *Sim) resumePart(ctx context.Context, run *shardedRun, i int, path string, from, to simtime.Day, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) error {
	p := run.man.Parts[i]
	obs := salvagePrefix(path)

	w, err := dataset.CreateFS(run.fsys, path, run.man.Meta)
	if err != nil {
		return err
	}
	front, keep := dataset.DeriveFrontier(obs)
	emit, errp := w.Emit()
	for _, o := range obs[:keep] {
		emit(o)
	}
	femit := emit
	if wrap != nil {
		femit = wrap(emit)
	}

	var genErr error
	switch {
	case p.Kind == dataset.PartKindAbusive:
		// The abusive stream is small and not range-resumable; any
		// salvaged abusive records were dropped by DeriveFrontier (keep
		// counts only the benign prefix, which is empty here) and the
		// whole stream regenerates.
		s.Abusive.Generate(from, to, femit)
	case front.Restart:
		genErr = s.Benign.GenerateUsersCtx(ctx, p.UserLo, p.UserHi, from, to, femit)
	default:
		idx := s.UserIndex(front.UserID)
		if idx < p.UserLo || idx >= p.UserHi || front.BenignDone {
			// The salvaged prefix names a frontier outside this part's
			// range (or claims abusive records in a benign part): the
			// prefix cannot be trusted, regenerate the range whole.
			w.Abort()
			return s.resumeRestart(ctx, run, i, path, from, to, wrap)
		}
		genErr = s.Benign.GenerateUsersFromCtx(ctx, idx, front.Day, p.UserHi, from, to, femit)
	}
	if *errp != nil {
		w.Close() // best effort: keep whatever reached disk
		return *errp
	}
	if genErr != nil {
		w.Close()
		return genErr
	}
	return run.finalizePart(i, w)
}

// resumeRestart regenerates a part from scratch after its salvaged
// prefix proved untrustworthy.
func (s *Sim) resumeRestart(ctx context.Context, run *shardedRun, i int, path string, from, to simtime.Day, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) error {
	p := run.man.Parts[i]
	w, err := dataset.CreateFS(run.fsys, path, run.man.Meta)
	if err != nil {
		return err
	}
	emit, errp := w.Emit()
	femit := emit
	if wrap != nil {
		femit = wrap(emit)
	}
	var genErr error
	if p.Kind == dataset.PartKindAbusive {
		s.Abusive.Generate(from, to, femit)
	} else {
		genErr = s.Benign.GenerateUsersCtx(ctx, p.UserLo, p.UserHi, from, to, femit)
	}
	if *errp != nil {
		w.Close()
		return *errp
	}
	if genErr != nil {
		w.Close()
		return genErr
	}
	return run.finalizePart(i, w)
}

// salvagePrefix loads the strictly verified record prefix of a part
// from the best surviving source: the finalized (possibly partial)
// part file, or failing that its crash-safe .tmp sibling. A part with
// no readable source resumes from scratch.
func salvagePrefix(path string) []telemetry.Observation {
	for _, src := range []string{path, path + ".tmp"} {
		if _, err := os.Stat(src); err != nil {
			continue
		}
		if _, obs, err := dataset.LoadResumePrefix(src); err == nil && len(obs) > 0 {
			return obs
		}
	}
	return nil
}
