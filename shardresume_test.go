package userv6

// Fault-injection tests for resumable sharded export: every test kills
// an export at an injected fault (exact-byte crash, torn manifest
// rewrite, cancellation), resumes the directory, and requires the
// result to be byte-identical to an uninterrupted run — parts and
// manifest both.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"userv6/internal/dataset"
	"userv6/internal/faultio"
	"userv6/internal/sampling"
	"userv6/internal/telemetry"
)

const shardHeaderSize = 256 // dataset header length, mirrored for offset math

// exportPristine runs an uninterrupted sharded export and returns its
// manifest plus the bytes of every file it wrote (parts and manifest).
func exportPristine(t *testing.T, sim *Sim, dir string, shards int, meta dataset.Meta, wrap func(telemetry.EmitFunc) telemetry.EmitFunc) (*dataset.Manifest, map[string][]byte) {
	t.Helper()
	man, err := sim.ExportShardedCtx(context.Background(), dir, shards, meta, wrap)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for _, p := range man.Parts {
		raw, err := os.ReadFile(filepath.Join(dir, p.Name))
		if err != nil {
			t.Fatal(err)
		}
		want[p.Name] = raw
	}
	raw, err := os.ReadFile(filepath.Join(dir, dataset.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	want[dataset.ManifestName] = raw
	return man, want
}

// requireIdentical compares every pristine file against the resumed
// directory byte for byte.
func requireIdentical(t *testing.T, dir string, want map[string][]byte) {
	t.Helper()
	for name, wantRaw := range want {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, wantRaw) {
			t.Fatalf("%s differs from uninterrupted run (%d vs %d bytes)", name, len(got), len(wantRaw))
		}
	}
}

// TestShardedResumeTruncationSweep is the exhaustive crash sweep: for
// every frame boundary of every part (plus mid-header and mid-payload
// cuts), a crash failpoint tears the part's temp file at exactly that
// byte mid-export, and the resumed directory must be byte-identical to
// an uninterrupted run. -short subsamples the cut list.
func TestShardedResumeTruncationSweep(t *testing.T) {
	const users, shards = 300, 2
	sim := NewSim(DefaultScenario(users).WithSeed(33))
	from, to := AnalysisWeek()
	meta := dataset.Meta{Seed: 33, Users: users, FromDay: int(from), ToDay: int(to), Sample: "all"}

	pristine := t.TempDir()
	man, want := exportPristine(t, sim, pristine, shards, meta, nil)

	// Cut points per part: the start of every frame (a tear exactly on a
	// block boundary), inside every frame header, inside one payload,
	// and through the stream signature.
	type cut struct {
		part string
		off  int64
	}
	var cuts []cut
	for _, p := range man.Parts {
		stream := want[p.Name][shardHeaderSize:]
		if _, err := telemetry.SalvageRawBlocks(stream, func(b telemetry.RawBlock, _ []byte) {
			cuts = append(cuts,
				cut{p.Name, shardHeaderSize + b.Offset},     // frame boundary
				cut{p.Name, shardHeaderSize + b.Offset + 7}, // torn frame header
			)
			if b.Index == 0 {
				cuts = append(cuts, cut{p.Name, shardHeaderSize + b.Offset + 16 + 3}) // torn payload
			}
		}); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		cuts = append(cuts, cut{p.Name, shardHeaderSize + 2}) // torn signature
	}
	if len(cuts) < 2*len(man.Parts) {
		t.Fatalf("sweep found only %d cut points across %d parts", len(cuts), len(man.Parts))
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}

	for i := 0; i < len(cuts); i += stride {
		c := cuts[i]
		t.Run(fmt.Sprintf("%s@%d", c.part, c.off), func(t *testing.T) {
			dir := t.TempDir()
			in := faultio.New(faultio.OS, uint64(c.off))
			if err := in.ArmPoint(faultio.Failpoint{
				Path: c.part + ".tmp", Op: faultio.OpWrite, Offset: c.off, Action: faultio.ActionCrash,
			}); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.ExportShardedFS(context.Background(), in, dir, shards, meta, nil); err == nil {
				t.Fatal("export across an armed crash failpoint succeeded")
			}
			if !in.Crashed() {
				t.Fatalf("crash failpoint at %s@%d never fired", c.part, c.off)
			}
			if _, err := dataset.ReadManifest(filepath.Join(dir, dataset.ManifestName)); err != nil {
				t.Fatalf("crashed export left no readable manifest: %v", err)
			}
			man2, err := sim.ResumeShardedCtx(context.Background(), dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !man2.Complete {
				t.Fatal("resumed manifest not marked complete")
			}
			requireIdentical(t, dir, want)
		})
	}
}

// TestShardedResumeManifestCrashConsistency kills the export at every
// manifest rewrite — including the window between a part's finalize
// and its manifest update — and requires a plain resume (no tolerant
// mode anywhere) to reproduce the uninterrupted run, with a strict
// merge accepting the result.
func TestShardedResumeManifestCrashConsistency(t *testing.T) {
	const users, shards = 240, 2
	sim := NewSim(DefaultScenario(users).WithSeed(7))
	from, to := AnalysisWeek()
	meta := dataset.Meta{Seed: 7, Users: users, FromDay: int(from), ToDay: int(to), Sample: "all"}

	pristine := t.TempDir()
	man, want := exportPristine(t, sim, pristine, shards, meta, nil)

	single := filepath.Join(t.TempDir(), "single.uv6")
	wantSingle, _ := writeSingle(t, sim, single, meta)

	// Manifest creates during an export: 1 provisional, one per part
	// finalize, 1 final Complete rewrite. Crashing the n-th (n >= 2)
	// lands between a part finalize and its manifest update, or on the
	// final rewrite itself.
	for n := 2; n <= len(man.Parts)+2; n++ {
		t.Run(fmt.Sprintf("crash-manifest-write-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			in := faultio.New(faultio.OS, uint64(n))
			if err := in.Arm(fmt.Sprintf("manifest.uv6m.tmp:create:n=%d:crash", n)); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.ExportShardedFS(context.Background(), in, dir, shards, meta, nil); err == nil {
				t.Fatal("export across an armed crash failpoint succeeded")
			}
			if !in.Crashed() {
				t.Fatalf("manifest crash failpoint n=%d never fired", n)
			}
			if _, err := sim.ResumeShardedCtx(context.Background(), dir, nil); err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, dir, want)

			merged := filepath.Join(dir, "merged.uv6")
			_, rep, err := dataset.MergeManifest(merged, filepath.Join(dir, dataset.ManifestName),
				&dataset.MergeOptions{Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Complete {
				t.Fatal("strict merge of resumed export reported incomplete")
			}
			got, err := os.ReadFile(merged)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, wantSingle) {
				t.Fatal("merge of resumed export differs from single-writer run")
			}
		})
	}
}

// TestShardedResumeAfterCancel interrupts an export by context
// cancellation mid-generation (the SIGINT path) and resumes it; a
// deterministic sampler rides along to prove wrap-decorated runs
// resume byte-identically too.
func TestShardedResumeAfterCancel(t *testing.T) {
	const users, shards = 300, 3
	sim := NewSim(DefaultScenario(users).WithSeed(12))
	from, to := AnalysisWeek()
	meta := dataset.Meta{Seed: 12, Users: users, FromDay: int(from), ToDay: int(to), Sample: "user:0.5"}
	sampler, err := sampling.Parse(meta.Sample, meta.Seed)
	if err != nil {
		t.Fatal(err)
	}
	wrap := func(emit telemetry.EmitFunc) telemetry.EmitFunc {
		return sampling.Filter(sampler, emit)
	}

	pristine := t.TempDir()
	_, want := exportPristine(t, sim, pristine, shards, meta, wrap)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	countingWrap := func(emit telemetry.EmitFunc) telemetry.EmitFunc {
		emit = wrap(emit)
		return func(o telemetry.Observation) {
			if seen.Add(1) == 500 {
				cancel()
			}
			emit(o)
		}
	}
	if _, err := sim.ExportShardedCtx(ctx, dir, shards, meta, countingWrap); err == nil {
		t.Fatal("cancelled export succeeded")
	}
	if _, err := sim.ResumeShardedCtx(context.Background(), dir, wrap); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, dir, want)
}

// TestShardedResumeIdempotent: resuming a directory that already holds
// a complete export regenerates nothing and leaves every byte alone.
func TestShardedResumeIdempotent(t *testing.T) {
	const users, shards = 200, 2
	sim := NewSim(DefaultScenario(users).WithSeed(5))
	from, to := AnalysisWeek()
	meta := dataset.Meta{Seed: 5, Users: users, FromDay: int(from), ToDay: int(to), Sample: "all"}

	dir := t.TempDir()
	_, want := exportPristine(t, sim, dir, shards, meta, nil)

	// A create fault on any part temp file would fire if resume opened
	// a writer for a part it should recognize as finalized by checksum.
	in := faultio.New(faultio.OS, 1)
	if err := in.Arm("part-*.uv6.tmp:create:x=-1:err"); err != nil {
		t.Fatal(err)
	}
	man, err := sim.ResumeShardedFS(context.Background(), in, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !man.Complete {
		t.Fatal("resumed manifest not marked complete")
	}
	requireIdentical(t, dir, want)
	if hits := in.TotalHits(); hits != 0 {
		t.Fatalf("idempotent resume touched part contents (%d injected faults fired)", hits)
	}
}
