GO ?= go
FUZZTIME ?= 10s
# The CI bench gate: one pass over the generation, codec, trie, and
# analysis hot paths, checked against bench/BENCH_baseline.json (3x
# tripwire on PRs; the nightly run re-gates the same set at 1.3x with
# real -benchtime sampling).
BENCH_GATE = ^(BenchmarkGenerateWeek|BenchmarkGenerateDay|BenchmarkWriterV2|BenchmarkReaderV2|BenchmarkWriterV2LZ|BenchmarkReaderV2LZ|BenchmarkWriterV2Delta|BenchmarkReaderV2Delta|BenchmarkTrieUpdate|BenchmarkTrieLookup|BenchmarkRollup|BenchmarkUserCentricObserve|BenchmarkIPCentricObserve|BenchmarkAnalyzeSequential|BenchmarkAnalyzeParallel|BenchmarkAnalyzeFused|BenchmarkAnalyzeUnordered|BenchmarkAnalyzeManifest|BenchmarkAnalyzeMergeAnalyze)$$
BENCH_PKGS = . ./internal/telemetry ./internal/trie ./internal/core
NIGHTLY_BENCHTIME = 2s
FUZZ_TARGETS = \
	./internal/telemetry:FuzzReader \
	./internal/telemetry:FuzzSalvage \
	./internal/telemetry:FuzzLZRoundTrip \
	./internal/telemetry:FuzzLZDecode \
	./internal/telemetry:FuzzDeltaRoundTrip \
	./internal/telemetry:FuzzDeltaDecode \
	./internal/dataset:FuzzDatasetOpen \
	./internal/dataset:FuzzDatasetRoundTrip

.PHONY: all build vet fmt-check lint test race faults fused-race fuzz-smoke bench-smoke bench-baseline ratio-gate ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Repo-invariant static analysis (cmd/userv6vet): faultio seam
# discipline, ctx-aware sleeps, commutative-analyzer Merge contracts,
# errors.Is on sentinels, sync.Pool Get/Put balance. Exits non-zero on
# any finding; see docs/STATIC_ANALYSIS.md for the rule catalog and the
# //userv6vet:ignore suppression syntax.
lint:
	$(GO) run ./cmd/userv6vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection gate under the race detector: the retry/faultio unit
# tests plus the crash sweeps — sharded exports killed at injected
# faults (every frame boundary of every part in the full sweep, every
# manifest rewrite) must resume byte-identical. FAULTS_FLAGS=-short
# subsamples the truncation sweep for the PR gate; nightly runs it full.
FAULTS_FLAGS ?=
faults:
	$(GO) test -race $(FAULTS_FLAGS) ./internal/faultio ./internal/retry
	$(GO) test -race $(FAULTS_FLAGS) -run 'TestShardedResume|TestMergeRetriesTransientIO|TestMergeCtxCancelled' . ./internal/dataset

# Fused-path race gate: the fused decode+analyze pipeline (worker-local
# replicas, all default analyzers), completion-order delivery, the
# ForEachWorker reader primitives, and direct manifest analysis (shared
# replicas fanned out across parts) under the race detector.
# FAULTS_FLAGS conventions apply: -short for the PR lane, full sweep
# nightly.
fused-race:
	$(GO) test -race $(FAULTS_FLAGS) -run 'TestAnalyzeDatasetFused|TestAnalyzeDatasetUnordered|TestForEachWorker|TestAnalyzeSourceParityMatrix|TestAnalyzeManifestTolerantCorruptPart' . ./internal/dataset

# Short native-fuzz smoke over every decoder fuzz target: catches
# panics and typed-error regressions without a long campaign.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME); \
	done

# Single-pass benchmark smoke: catches panics outright and gates ns/op
# against the checked-in baseline (order-of-magnitude tripwire, not a
# profiler). Writes BENCH_results.json for the CI artifact.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime=1x $(BENCH_PKGS) 2>&1 | tee bench-smoke.txt
	$(GO) run ./cmd/benchgate -in bench-smoke.txt -baseline bench/BENCH_baseline.json -out BENCH_results.json

# Refresh the checked-in baseline after intentional perf changes.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime=1x $(BENCH_PKGS) 2>&1 | tee bench-smoke.txt
	$(GO) run ./cmd/benchgate -in bench-smoke.txt -baseline bench/BENCH_baseline.json -out BENCH_results.json -update

# Compression-ratio gate, run next to the bench smoke: on the fixture
# workload the delta policy must store no more bytes than lz and auto
# must beat lz strictly — the delta codec's measured success criterion.
ratio-gate:
	$(GO) test ./internal/dataset -run '^TestCompressionRatioGate$$' -v

# Nightly benchmark gate: the same benchmark set with real sampling
# (-benchtime=$(NIGHTLY_BENCHTIME)) and a much tighter ratio, to catch
# the slow drift the 3x PR tripwire deliberately ignores.
bench-nightly:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime=$(NIGHTLY_BENCHTIME) $(BENCH_PKGS) 2>&1 | tee bench-nightly.txt
	$(GO) run ./cmd/benchgate -in bench-nightly.txt -baseline bench/BENCH_nightly_baseline.json -out BENCH_nightly_results.json -max-ratio 1.3

# Refresh the nightly baseline (run on the hardware the nightly job
# uses; a 1.3x gate is meaningless across machine classes).
bench-nightly-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_GATE)' -benchtime=$(NIGHTLY_BENCHTIME) $(BENCH_PKGS) 2>&1 | tee bench-nightly.txt
	$(GO) run ./cmd/benchgate -in bench-nightly.txt -baseline bench/BENCH_nightly_baseline.json -out BENCH_nightly_results.json -max-ratio 1.3 -update

ci: fmt-check vet lint build race faults fused-race fuzz-smoke bench-smoke ratio-gate

clean:
	$(GO) clean ./...
	rm -rf internal/telemetry/testdata/fuzz internal/dataset/testdata/fuzz
	rm -f bench-smoke.txt BENCH_results.json bench-nightly.txt BENCH_nightly_results.json
