GO ?= go
FUZZTIME ?= 10s
FUZZ_TARGETS = \
	./internal/telemetry:FuzzReader \
	./internal/telemetry:FuzzSalvage \
	./internal/dataset:FuzzDatasetOpen \
	./internal/dataset:FuzzDatasetRoundTrip

.PHONY: all build vet test race fuzz-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short native-fuzz smoke over every decoder fuzz target: catches
# panics and typed-error regressions without a long campaign.
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "fuzz $$fn ($$pkg, $(FUZZTIME))"; \
		$(GO) test $$pkg -run='^$$' -fuzz="^$$fn$$" -fuzztime=$(FUZZTIME); \
	done

ci: vet build race fuzz-smoke

clean:
	$(GO) clean ./...
	rm -rf internal/telemetry/testdata/fuzz internal/dataset/testdata/fuzz
