package userv6

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/simtime"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// TestParallelMatchesSerial: sharded generation + merge must reproduce
// the serial analysis exactly.
func TestParallelMatchesSerial(t *testing.T) {
	sim := NewSim(DefaultScenario(3_000))

	serial := sim.Fig2()
	parallel := sim.Fig2Parallel(4)

	if serial.Entities != parallel.Entities {
		t.Fatalf("entities: serial %d vs parallel %d", serial.Entities, parallel.Entities)
	}
	for v := 0; v <= 30; v++ {
		if serial.WeekV6.CDFAt(v) != parallel.WeekV6.CDFAt(v) {
			t.Fatalf("week v6 CDF differs at %d: %v vs %v",
				v, serial.WeekV6.CDFAt(v), parallel.WeekV6.CDFAt(v))
		}
		if serial.WeekV4.CDFAt(v) != parallel.WeekV4.CDFAt(v) {
			t.Fatalf("week v4 CDF differs at %d", v)
		}
		if serial.DayV6.CDFAt(v) != parallel.DayV6.CDFAt(v) {
			t.Fatalf("day v6 CDF differs at %d", v)
		}
	}
}

func TestIPCentricParallelMatchesSerial(t *testing.T) {
	sim := NewSim(DefaultScenario(3_000))
	from, to := AnalysisWeek()

	serial := core.NewIPCentric(netaddr.IPv6, 64)
	sim.Generate(from, to, serial.Observe)

	parallel := sim.IPCentricParallel(netaddr.IPv6, 64, 3)

	if serial.Prefixes() != parallel.Prefixes() {
		t.Fatalf("prefixes: %d vs %d", serial.Prefixes(), parallel.Prefixes())
	}
	sh, ph := serial.UsersPerPrefix(), parallel.UsersPerPrefix()
	if sh.N() != ph.N() || sh.Max() != ph.Max() {
		t.Fatalf("hist N/max differ: %d/%d vs %d/%d", sh.N(), sh.Max(), ph.N(), ph.Max())
	}
	for v := 0; v <= 20; v++ {
		if sh.CDFAt(v) != ph.CDFAt(v) {
			t.Fatalf("CDF differs at %d", v)
		}
	}
	sa, pa := serial.AbusivePerAbusivePrefix(), parallel.AbusivePerAbusivePrefix()
	if sa.N() != pa.N() {
		t.Fatalf("abusive prefixes: %d vs %d", sa.N(), pa.N())
	}
}

func TestGenerateParallelCoversAllUsers(t *testing.T) {
	sim := NewSim(DefaultScenario(1_000))
	seen := make([]map[uint64]bool, 0)
	var serialCount int
	sim.Benign.GenerateDay(84, func(telemetry.Observation) { serialCount++ })

	var total atomic.Int64
	sim.GenerateParallel(84, 84, 5, func() telemetry.EmitFunc {
		m := make(map[uint64]bool)
		seen = append(seen, m)
		return func(o telemetry.Observation) {
			m[o.UserID] = true
			total.Add(1)
		}
	})
	if total.Load() != int64(serialCount) {
		t.Fatalf("parallel emitted %d observations, serial %d", total.Load(), serialCount)
	}
	// Shards are disjoint.
	union := make(map[uint64]bool)
	sum := 0
	for _, m := range seen {
		sum += len(m)
		for uid := range m {
			union[uid] = true
		}
	}
	if sum != len(union) {
		t.Fatalf("shards overlap: %d vs %d distinct", sum, len(union))
	}
}

func TestUserCentricMerge(t *testing.T) {
	a := core.NewUserCentricFor(false)
	b := core.NewUserCentricFor(false)
	o1 := telemetry.Observation{UserID: 1, Addr: netaddr.MustParseAddr("2001:db8::1"), Requests: 1}
	o2 := telemetry.Observation{UserID: 1, Addr: netaddr.MustParseAddr("2001:db8::2"), Requests: 1}
	o3 := telemetry.Observation{UserID: 2, Addr: netaddr.MustParseAddr("10.0.0.1"), Requests: 1}
	a.Observe(o1)
	b.Observe(o2)
	b.Observe(o1) // overlap: must not double-count
	b.Observe(o3)
	a.Merge(b)
	if a.Users() != 2 {
		t.Fatalf("users = %d", a.Users())
	}
	h := a.AddrsPerUser(netaddr.IPv6)
	if h.N() != 1 || h.Max() != 2 {
		t.Fatalf("v6 hist N=%d max=%d", h.N(), h.Max())
	}
	if a.AddrsPerUser(netaddr.IPv4).N() != 1 {
		t.Fatal("v4 user lost in merge")
	}
}

// histFingerprint renders a histogram's full distribution to a string,
// so two runs can be compared byte-for-byte.
func histFingerprint(h *stats.IntHist) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "N=%d max=%d mean=%v;", h.N(), h.Max(), h.Mean())
	for v := 0; uint64(v) <= h.Max(); v++ {
		fmt.Fprintf(&sb, "%d:%v ", v, h.CDFAt(v))
	}
	return sb.String()
}

// Shard-count invariance: the same analysis with 1, 3, and GOMAXPROCS
// shards must produce byte-identical results.
func TestShardCountInvariance(t *testing.T) {
	sim := NewSim(DefaultScenario(2_000))
	shardCounts := []int{1, 3, runtime.GOMAXPROCS(0)}

	type fp struct{ dayV6, weekV4, weekV6 string }
	var fig2 []fp
	var entities []int
	var ipc []string
	for _, n := range shardCounts {
		r := sim.Fig2Parallel(n)
		fig2 = append(fig2, fp{
			dayV6:  histFingerprint(r.DayV6),
			weekV4: histFingerprint(r.WeekV4),
			weekV6: histFingerprint(r.WeekV6),
		})
		entities = append(entities, r.Entities)
		ic := sim.IPCentricParallel(netaddr.IPv6, 64, n)
		ipc = append(ipc, fmt.Sprintf("p=%d;%s", ic.Prefixes(), histFingerprint(ic.UsersPerPrefix())))
	}
	for i := 1; i < len(shardCounts); i++ {
		if entities[i] != entities[0] {
			t.Fatalf("entities differ: shards=%d gives %d, shards=%d gives %d",
				shardCounts[0], entities[0], shardCounts[i], entities[i])
		}
		if fig2[i] != fig2[0] {
			t.Fatalf("Fig2Parallel differs between shards=%d and shards=%d",
				shardCounts[0], shardCounts[i])
		}
		if ipc[i] != ipc[0] {
			t.Fatalf("IPCentricParallel differs between shards=%d and shards=%d",
				shardCounts[0], shardCounts[i])
		}
	}
}

// An injected consumer panic must surface as a *ShardPanicError naming
// the shard's user range — not crash the process — and the sibling
// shards must be cancelled rather than run to completion.
func TestGenerateParallelCtxPanicIsolated(t *testing.T) {
	sim := NewSim(DefaultScenario(2_000))
	from, to := AnalysisWeek()

	const panicUser = 777
	var shardIdx atomic.Int32
	err := sim.GenerateParallelCtx(context.Background(), from, to, 4, func() telemetry.EmitFunc {
		shardIdx.Add(1)
		return func(o telemetry.Observation) {
			if o.UserID == panicUser {
				panic("injected consumer fault")
			}
		}
	})
	if err == nil {
		t.Fatal("injected panic did not surface as an error")
	}
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ShardPanicError, got %T: %v", err, err)
	}
	if pe.Value != "injected consumer fault" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if panicUser < pe.UserLo || panicUser >= pe.UserHi {
		t.Fatalf("shard user range [%d,%d) does not contain panicking user %d",
			pe.UserLo, pe.UserHi, panicUser)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("users [%d,%d)", pe.UserLo, pe.UserHi)) {
		t.Fatalf("error lacks user-range attribution: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
}

// Sibling shards observe the cancellation triggered by a fault: they
// stop early instead of generating their full ranges.
func TestGenerateParallelCtxSiblingsCancelled(t *testing.T) {
	sim := NewSim(DefaultScenario(4_000))
	from, to := AnalysisWeek()

	var full int64
	sim.Benign.Generate(from, to, func(telemetry.Observation) { full++ })

	var seen atomic.Int64
	err := sim.GenerateParallelCtx(context.Background(), from, to, 4, func() telemetry.EmitFunc {
		first := true
		return func(telemetry.Observation) {
			seen.Add(1)
			if first {
				first = false
				panic("fail fast")
			}
		}
	})
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ShardPanicError, got %v", err)
	}
	// All four shards die on their first observation batch; the run
	// must emit a small fraction of the full stream, not most of it.
	if seen.Load() > full/2 {
		t.Fatalf("siblings kept generating after fault: %d of %d observations", seen.Load(), full)
	}
}

// External cancellation stops generation within one (user, day) batch
// and propagates context.Canceled.
func TestGenerateParallelCtxCancellation(t *testing.T) {
	sim := NewSim(DefaultScenario(4_000))
	from, to := AnalysisWeek()

	var full int64
	sim.Benign.Generate(from, to, func(telemetry.Observation) { full++ })

	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	err := sim.GenerateParallelCtx(ctx, from, to, 4, func() telemetry.EmitFunc {
		return func(telemetry.Observation) {
			if seen.Add(1) == 100 {
				cancel()
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if seen.Load() > full/2 {
		t.Fatalf("cancellation ignored: %d of %d observations generated", seen.Load(), full)
	}
}

// An already-cancelled context generates nothing.
func TestGenerateParallelCtxPreCancelled(t *testing.T) {
	sim := NewSim(DefaultScenario(500))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var seen atomic.Int64
	err := sim.GenerateParallelCtx(ctx, 84, 84, 2, func() telemetry.EmitFunc {
		return func(telemetry.Observation) { seen.Add(1) }
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if seen.Load() != 0 {
		t.Fatalf("pre-cancelled run emitted %d observations", seen.Load())
	}
}

// The serial ctx variants mirror their errorless counterparts.
func TestGenerateCtxMatchesGenerate(t *testing.T) {
	sim := NewSim(DefaultScenario(500))
	var a, b int
	sim.Generate(84, 85, func(telemetry.Observation) { a++ })
	if err := sim.GenerateCtx(context.Background(), 84, 85, func(telemetry.Observation) { b++ }); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("GenerateCtx emitted %d observations, Generate %d", b, a)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	if err := sim.GenerateCtx(ctx, simtime.Day(84), simtime.Day(85), func(telemetry.Observation) { n++ }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n != 0 {
		t.Fatalf("cancelled GenerateCtx emitted %d observations", n)
	}
}

func BenchmarkFig2Parallel(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		_ = sim.Fig2Parallel(0)
	}
}
