package userv6

import (
	"testing"

	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/telemetry"
)

// TestParallelMatchesSerial: sharded generation + merge must reproduce
// the serial analysis exactly.
func TestParallelMatchesSerial(t *testing.T) {
	sim := NewSim(DefaultScenario(3_000))

	serial := sim.Fig2()
	parallel := sim.Fig2Parallel(4)

	if serial.Entities != parallel.Entities {
		t.Fatalf("entities: serial %d vs parallel %d", serial.Entities, parallel.Entities)
	}
	for v := 0; v <= 30; v++ {
		if serial.WeekV6.CDFAt(v) != parallel.WeekV6.CDFAt(v) {
			t.Fatalf("week v6 CDF differs at %d: %v vs %v",
				v, serial.WeekV6.CDFAt(v), parallel.WeekV6.CDFAt(v))
		}
		if serial.WeekV4.CDFAt(v) != parallel.WeekV4.CDFAt(v) {
			t.Fatalf("week v4 CDF differs at %d", v)
		}
		if serial.DayV6.CDFAt(v) != parallel.DayV6.CDFAt(v) {
			t.Fatalf("day v6 CDF differs at %d", v)
		}
	}
}

func TestIPCentricParallelMatchesSerial(t *testing.T) {
	sim := NewSim(DefaultScenario(3_000))
	from, to := AnalysisWeek()

	serial := core.NewIPCentric(netaddr.IPv6, 64)
	sim.Generate(from, to, serial.Observe)

	parallel := sim.IPCentricParallel(netaddr.IPv6, 64, 3)

	if serial.Prefixes() != parallel.Prefixes() {
		t.Fatalf("prefixes: %d vs %d", serial.Prefixes(), parallel.Prefixes())
	}
	sh, ph := serial.UsersPerPrefix(), parallel.UsersPerPrefix()
	if sh.N() != ph.N() || sh.Max() != ph.Max() {
		t.Fatalf("hist N/max differ: %d/%d vs %d/%d", sh.N(), sh.Max(), ph.N(), ph.Max())
	}
	for v := 0; v <= 20; v++ {
		if sh.CDFAt(v) != ph.CDFAt(v) {
			t.Fatalf("CDF differs at %d", v)
		}
	}
	sa, pa := serial.AbusivePerAbusivePrefix(), parallel.AbusivePerAbusivePrefix()
	if sa.N() != pa.N() {
		t.Fatalf("abusive prefixes: %d vs %d", sa.N(), pa.N())
	}
}

func TestGenerateParallelCoversAllUsers(t *testing.T) {
	sim := NewSim(DefaultScenario(1_000))
	seen := make([]map[uint64]bool, 0)
	var serialCount int
	sim.Benign.GenerateDay(84, func(telemetry.Observation) { serialCount++ })

	total := 0
	sim.GenerateParallel(84, 84, 5, func() telemetry.EmitFunc {
		m := make(map[uint64]bool)
		seen = append(seen, m)
		return func(o telemetry.Observation) {
			m[o.UserID] = true
			total++
		}
	})
	if total != serialCount {
		t.Fatalf("parallel emitted %d observations, serial %d", total, serialCount)
	}
	// Shards are disjoint.
	union := make(map[uint64]bool)
	sum := 0
	for _, m := range seen {
		sum += len(m)
		for uid := range m {
			union[uid] = true
		}
	}
	if sum != len(union) {
		t.Fatalf("shards overlap: %d vs %d distinct", sum, len(union))
	}
}

func TestUserCentricMerge(t *testing.T) {
	a := core.NewUserCentricFor(false)
	b := core.NewUserCentricFor(false)
	o1 := telemetry.Observation{UserID: 1, Addr: netaddr.MustParseAddr("2001:db8::1"), Requests: 1}
	o2 := telemetry.Observation{UserID: 1, Addr: netaddr.MustParseAddr("2001:db8::2"), Requests: 1}
	o3 := telemetry.Observation{UserID: 2, Addr: netaddr.MustParseAddr("10.0.0.1"), Requests: 1}
	a.Observe(o1)
	b.Observe(o2)
	b.Observe(o1) // overlap: must not double-count
	b.Observe(o3)
	a.Merge(b)
	if a.Users() != 2 {
		t.Fatalf("users = %d", a.Users())
	}
	h := a.AddrsPerUser(netaddr.IPv6)
	if h.N() != 1 || h.Max() != 2 {
		t.Fatalf("v6 hist N=%d max=%d", h.N(), h.Max())
	}
	if a.AddrsPerUser(netaddr.IPv4).N() != 1 {
		t.Fatal("v4 user lost in merge")
	}
}

func BenchmarkFig2Parallel(b *testing.B) {
	sim := getBenchSim()
	for i := 0; i < b.N; i++ {
		_ = sim.Fig2Parallel(0)
	}
}
