package userv6

// Methodology validation: the paper's §3.1 deterministic attribute-hash
// sampling must reproduce full-population statistics from a fraction of
// the data, and extrapolation must recover population counts. These
// tests run the actual samplers over the actual telemetry stream — the
// full pipeline a replication on real data would use.

import (
	"math"
	"testing"

	"userv6/internal/core"
	"userv6/internal/netaddr"
	"userv6/internal/sampling"
	"userv6/internal/stats"
	"userv6/internal/telemetry"
)

// obsT shortens the callback signatures below.
type obsT = telemetry.Observation

func TestUserSampleReproducesUserCentricStats(t *testing.T) {
	sim := testSim(t)
	from, to := AnalysisWeek()

	full := core.NewUserCentricFor(false)
	sampler := sampling.ByUser(0.2, 7)
	sampled := core.NewUserCentricFor(false)
	sim.Benign.Generate(from, to, func(o obsT) {
		full.Observe(o)
		if sampler.Sampled(o) {
			sampled.Observe(o)
		}
	})

	// The sample contains roughly rate × users.
	ratio := float64(sampled.Users()) / float64(full.Users())
	if math.Abs(ratio-0.2) > 0.02 {
		t.Fatalf("sampled user share = %v", ratio)
	}
	// Medians agree exactly; single-address shares within a few points.
	for _, fam := range []netaddr.Family{netaddr.IPv4, netaddr.IPv6} {
		fh, sh := full.AddrsPerUser(fam), sampled.AddrsPerUser(fam)
		if fh.Median() != sh.Median() {
			t.Errorf("%v median: full %d vs sample %d", fam, fh.Median(), sh.Median())
		}
		if math.Abs(fh.CDFAt(1)-sh.CDFAt(1)) > 0.04 {
			t.Errorf("%v single share: full %.3f vs sample %.3f", fam, fh.CDFAt(1), sh.CDFAt(1))
		}
	}
	// Determinism: the sampled set retains each user's COMPLETE history
	// (the property the lifespan analyses rely on): a sampled user has
	// the same address count in both analyzers.
	for _, top := range sampled.TopUsersByAddrs(netaddr.IPv6, 50) {
		fullTop := full.TopUsersByAddrs(netaddr.IPv6, 100000)
		found := false
		for _, ft := range fullTop {
			if ft.UID == top.UID {
				if ft.Count != top.Count {
					t.Fatalf("user %d: sample saw %d addrs, full saw %d", top.UID, top.Count, ft.Count)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("sampled user %d missing from full analysis", top.UID)
		}
		break // one spot check suffices; the loop above is O(n).
	}
}

func TestAddrSampleExtrapolation(t *testing.T) {
	sim := testSim(t)
	from, to := AnalysisWeek()

	fullAddrs := core.NewIPCentric(netaddr.IPv6, 128)
	sampler := sampling.ByAddr(0.25, 3)
	sampledAddrs := core.NewIPCentric(netaddr.IPv6, 128)
	sim.Benign.Generate(from, to, func(o obsT) {
		fullAddrs.Observe(o)
		if sampler.Sampled(o) {
			sampledAddrs.Observe(o)
		}
	})
	// Extrapolated address count recovers the full count within a few
	// percent (binomial noise at this scale).
	est := stats.Extrapolate(uint64(sampledAddrs.Prefixes()), sampler.Rate())
	ratio := est / float64(fullAddrs.Prefixes())
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("extrapolated %f vs full %d (ratio %v)", est, fullAddrs.Prefixes(), ratio)
	}
	// The users-per-address distribution is unbiased under address
	// sampling (every address keeps all its users).
	f, s := fullAddrs.UsersPerPrefix(), sampledAddrs.UsersPerPrefix()
	if math.Abs(f.CDFAt(1)-s.CDFAt(1)) > 0.02 {
		t.Fatalf("single-user share: full %.4f vs sample %.4f", f.CDFAt(1), s.CDFAt(1))
	}
}

func TestPrefixSampleKeepsSubnetsIntact(t *testing.T) {
	sim := testSim(t)
	from, to := AnalysisWeek()
	sampler := sampling.ByPrefix(0.3, 64, 9)

	full := core.NewIPCentric(netaddr.IPv6, 64)
	sampled := core.NewIPCentric(netaddr.IPv6, 64)
	sim.Benign.Generate(from, to, func(o obsT) {
		full.Observe(o)
		if sampler.Sampled(o) {
			sampled.Observe(o)
		}
	})
	// Each sampled /64 keeps its complete population: its user count in
	// the sampled analyzer equals the full analyzer's.
	checked := 0
	for _, hp := range sampled.TopPrefixes(20) {
		for _, fp := range full.TopPrefixes(100000) {
			if fp.Prefix == hp.Prefix {
				if fp.Users != hp.Users {
					t.Fatalf("prefix %s: sampled %d users, full %d", hp.Prefix, hp.Users, fp.Users)
				}
				checked++
				break
			}
		}
		if checked >= 3 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no sampled prefixes verified")
	}
	// Sampled share of prefixes near the rate.
	ratio := float64(sampled.Prefixes()) / float64(full.Prefixes())
	if math.Abs(ratio-0.3) > 0.05 {
		t.Fatalf("prefix sample share = %v", ratio)
	}
}
