package userv6

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"userv6/internal/core"
	"userv6/internal/dataset"
	"userv6/internal/netaddr"
	"userv6/internal/telemetry"
)

// analyzeSet registers one of every mergeable analyzer and returns the
// primaries for comparison.
type analyzeSet struct {
	set   *core.AnalyzerSet
	uc    *core.UserCentric
	ic    *core.IPCentric
	churn *core.ChurnAttribution
	life  *core.Lifespans
	prev  *core.Prevalence
}

// newAnalyzeSet registers every analyzer commutatively: each one's
// Merge is exact for arbitrary (not just user-disjoint) stream splits,
// which is what qualifies the default set for the fused and unordered
// analysis paths.
func newAnalyzeSet() analyzeSet {
	_, to := AnalysisWeek()
	s := analyzeSet{set: core.NewAnalyzerSet()}
	s.uc = core.NewUserCentricFor(false)
	core.AddCommutativeAnalyzer(s.set, s.uc,
		func() *core.UserCentric { return core.NewUserCentricFor(false) }, (*core.UserCentric).Merge)
	s.ic = core.NewIPCentric(netaddr.IPv6, 64)
	core.AddCommutativeAnalyzer(s.set, s.ic,
		func() *core.IPCentric { return core.NewIPCentric(netaddr.IPv6, 64) }, (*core.IPCentric).Merge)
	s.churn = core.NewChurnAttribution(to - 2)
	core.AddCommutativeAnalyzer(s.set, s.churn,
		func() *core.ChurnAttribution { return core.NewChurnAttribution(to - 2) }, (*core.ChurnAttribution).Merge)
	s.life = core.NewLifespans(to, 64, 128, 32)
	core.AddCommutativeAnalyzer(s.set, s.life,
		func() *core.Lifespans { return core.NewLifespans(to, 64, 128, 32) }, (*core.Lifespans).Merge)
	s.prev = core.NewPrevalence()
	core.AddCommutativeAnalyzerFiltered(s.set, s.prev, core.NewPrevalence, (*core.Prevalence).Merge,
		func(o telemetry.Observation) bool { return !o.Abusive })
	return s
}

// assertEqual compares every analyzer's query surface between two runs.
func (s analyzeSet) assertEqual(t *testing.T, want analyzeSet, label string) {
	t.Helper()
	if s.uc.Users() != want.uc.Users() {
		t.Fatalf("%s: users %d, want %d", label, s.uc.Users(), want.uc.Users())
	}
	if !reflect.DeepEqual(s.uc.AddrsPerUser(netaddr.IPv6), want.uc.AddrsPerUser(netaddr.IPv6)) {
		t.Fatalf("%s: AddrsPerUser differs", label)
	}
	if s.ic.Prefixes() != want.ic.Prefixes() {
		t.Fatalf("%s: prefixes %d, want %d", label, s.ic.Prefixes(), want.ic.Prefixes())
	}
	if !reflect.DeepEqual(s.ic.UsersPerPrefix(), want.ic.UsersPerPrefix()) {
		t.Fatalf("%s: UsersPerPrefix differs", label)
	}
	if s.churn.Breakdown() != want.churn.Breakdown() {
		t.Fatalf("%s: churn %+v, want %+v", label, s.churn.Breakdown(), want.churn.Breakdown())
	}
	if s.life.Pairs() != want.life.Pairs() {
		t.Fatalf("%s: lifespan pairs %d, want %d", label, s.life.Pairs(), want.life.Pairs())
	}
	if !reflect.DeepEqual(s.life.AgeHist(netaddr.IPv6, 128), want.life.AgeHist(netaddr.IPv6, 128)) {
		t.Fatalf("%s: AgeHist differs", label)
	}
	if !reflect.DeepEqual(s.prev.Daily(), want.prev.Daily()) {
		t.Fatalf("%s: Daily differs", label)
	}
	if !reflect.DeepEqual(s.prev.TopASNs(1, 0, nil), want.prev.TopASNs(1, 0, nil)) {
		t.Fatalf("%s: TopASNs differ", label)
	}
}

// AnalyzeParallelCtx must populate every registered analyzer exactly as
// a serial generate-and-observe pass does, at any shard count.
func TestAnalyzeParallelCtxMatchesSerial(t *testing.T) {
	sim := NewSim(DefaultScenario(2_000))
	from, to := AnalysisWeek()

	serial := newAnalyzeSet()
	sim.Generate(from, to, serial.set.Emit())

	for _, shards := range []int{1, 4} {
		par := newAnalyzeSet()
		if err := sim.AnalyzeParallelCtx(context.Background(), from, to, shards, par.set, true); err != nil {
			t.Fatal(err)
		}
		par.assertEqual(t, serial, "shards=4")
	}
}

// AnalyzeDatasetParallel must reproduce a sequential dataset replay for
// every analyzer, in both strict and tolerant mode.
func TestAnalyzeDatasetParallelMatchesSequential(t *testing.T) {
	sim := NewSim(DefaultScenario(1_500))
	from, to := AnalysisWeek()
	path := filepath.Join(t.TempDir(), "w.uv6")
	w, err := dataset.Create(path, dataset.Meta{Seed: 1, Users: 1500, FromDay: int(from), ToDay: int(to), Sample: "all"})
	if err != nil {
		t.Fatal(err)
	}
	emit, errp := w.Emit()
	sim.Generate(from, to, emit)
	if *errp != nil {
		t.Fatal(*errp)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seq := newAnalyzeSet()
	r, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ForEach(seq.set.Emit()); err != nil {
		t.Fatal(err)
	}
	r.Close()

	par := newAnalyzeSet()
	rep, err := sim.AnalyzeDatasetParallel(context.Background(), path, 4, par.set, false)
	if err != nil {
		t.Fatal(err)
	}
	par.assertEqual(t, seq, "strict")
	if rep.Records == 0 || rep.CorruptBlocks != 0 {
		t.Fatalf("strict report %+v", rep)
	}

	// Tolerant mode on a damaged copy must match dataset.Salvage.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[256+4+16+2000] ^= 0x20 // corrupt block 0
	bad := filepath.Join(t.TempDir(), "bad.uv6")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	tseq := newAnalyzeSet()
	srep, err := dataset.Salvage(bad, tseq.set.Emit())
	if err != nil {
		t.Fatal(err)
	}
	tpar := newAnalyzeSet()
	prep, err := sim.AnalyzeDatasetParallel(context.Background(), bad, 4, tpar.set, true)
	if err != nil {
		t.Fatal(err)
	}
	tpar.assertEqual(t, tseq, "tolerant")
	if !prep.Equal(srep.Stream) {
		t.Fatalf("tolerant coverage %+v, want %+v", prep, srep.Stream)
	}
	if prep.CorruptBlocks != 1 {
		t.Fatalf("expected 1 corrupt block, got %+v", prep)
	}
}
