package userv6

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"userv6/internal/dataset"
)

// TestShardedCompressedMergeByteIdentical: the full acceptance loop for
// the codec layer on real generated telemetry — a compressed sharded
// export merges back to exactly the single-writer compressed file, the
// manifest labels every part with its codec, and the artifact is at
// least 2x smaller than its identity twin.
func TestShardedCompressedMergeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	sim := NewSim(DefaultScenario(1_200).WithSeed(21))
	from, to := AnalysisWeek()
	meta := dataset.Meta{
		Seed: 21, Users: 1_200, FromDay: int(from), ToDay: int(to), Sample: "all",
	}
	lzMeta := meta
	lzMeta.Codec = "lz"

	plain, obs := writeSingle(t, sim, filepath.Join(dir, "plain.uv6"), meta)
	sim2 := NewSim(DefaultScenario(1_200).WithSeed(21))
	want, _ := writeSingle(t, sim2, filepath.Join(dir, "single.uv6"), lzMeta)
	if len(want)*2 > len(plain) {
		t.Fatalf("compressed dataset %d bytes vs %d plain, want >= 2x smaller", len(want), len(plain))
	}

	sim3 := NewSim(DefaultScenario(1_200).WithSeed(21))
	shardDir := filepath.Join(dir, "shards")
	man, err := sim3.ExportShardedCtx(context.Background(), shardDir, 4, lzMeta, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range man.Parts {
		if p.Codec != "lz" {
			t.Fatalf("manifest part %d declares codec %q, want lz", i, p.Codec)
		}
	}
	if man.ConfigHash == dataset.ConfigHash(meta) {
		t.Fatal("config hash ignores the codec")
	}

	merged := filepath.Join(dir, "merged.uv6")
	_, rep, err := dataset.MergeManifest(merged, filepath.Join(shardDir, dataset.ManifestName), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Records != uint64(len(obs)) {
		t.Fatalf("merge report: complete=%v records=%d want %d", rep.Complete, rep.Records, len(obs))
	}
	for _, cov := range rep.Parts {
		if !cov.CodecOK {
			t.Fatalf("part %s flagged for codec mismatch", cov.Name)
		}
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged compressed export differs from single-writer run (%d vs %d bytes)", len(got), len(want))
	}
}
